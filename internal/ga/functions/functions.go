// Package functions implements the paper's eight-function GA test bed
// (Table 1): DeJong's five classical functions [5] plus the Rastrigin,
// Schwefel and Griewank functions from the Mühlenbein–Schomisch–Born
// parallel-GA study [13]. Each function carries its bit-string encoding
// (variables are binary-encoded over their limit range, DeJong-style)
// so the GA engine and the benchmarks share one definition.
package functions

import (
	"fmt"
	"math"
	"math/rand"
)

// Function is one entry of Table 1, with its standard encoding.
type Function struct {
	No         int    // 1-based index as in Table 1
	Name       string // conventional name
	Vars       int    // number of decision variables
	BitsPerVar int    // bits per variable in the chromosome
	Lo, Hi     float64
	Min        float64 // global minimum of the deterministic part
	Noisy      bool    // true if evaluation adds observation noise (F4)
	// OptTarget is the objective value at or below which a run counts
	// as having found the global optimum ("number of runs in which the
	// global optimum is found", §4.3). It allows for the binary
	// encoding's grid resolution, and for F4 it is the table's <= -2.5.
	OptTarget float64

	eval func(x []float64, rng *rand.Rand) float64
}

// OptimumFound reports whether a best objective value reaches the
// function's optimum target.
func (f *Function) OptimumFound(best float64) bool { return best <= f.OptTarget }

// TotalBits returns the chromosome length in bits.
func (f *Function) TotalBits() int { return f.Vars * f.BitsPerVar }

// Bytes returns the packed chromosome size in bytes (for message-size
// accounting).
func (f *Function) Bytes() int { return (f.TotalBits() + 7) / 8 }

// Eval computes the (possibly noisy) objective at x. rng supplies the
// noise source for F4 and may be nil for deterministic functions.
func (f *Function) Eval(x []float64, rng *rand.Rand) float64 {
	if len(x) != f.Vars {
		panic(fmt.Sprintf("functions: F%d wants %d vars, got %d", f.No, f.Vars, len(x)))
	}
	return f.eval(x, rng)
}

// Decode maps a chromosome (one byte per bit, 0/1) to variable values:
// each variable's bits are read most-significant-first as a plain
// binary integer and scaled linearly onto [Lo, Hi] (DeJong's encoding).
func (f *Function) Decode(bits []byte) []float64 {
	return f.decode(bits, false)
}

// DecodeGray is Decode with the bit pattern interpreted as a reflected
// Gray code, the common alternative encoding for GA function
// optimization: adjacent parameter values differ in exactly one bit,
// removing the Hamming cliffs of plain binary.
func (f *Function) DecodeGray(bits []byte) []float64 {
	return f.decode(bits, true)
}

func (f *Function) decode(bits []byte, gray bool) []float64 {
	x := make([]float64, f.Vars)
	f.DecodeInto(x, bits, gray)
	return x
}

// DecodeInto is the allocation-free core of Decode/DecodeGray: it
// writes the decoded variables into dst, which must have length
// f.Vars. The arithmetic is identical to Decode, so the two produce
// bit-equal values.
func (f *Function) DecodeInto(dst []float64, bits []byte, gray bool) {
	if len(bits) != f.TotalBits() {
		panic(fmt.Sprintf("functions: F%d wants %d bits, got %d", f.No, f.TotalBits(), len(bits)))
	}
	if len(dst) != f.Vars {
		panic(fmt.Sprintf("functions: F%d wants %d vars of scratch, got %d", f.No, f.Vars, len(dst)))
	}
	maxv := float64(uint64(1)<<uint(f.BitsPerVar) - 1)
	bpv := f.BitsPerVar
	for i := 0; i < f.Vars; i++ {
		// Ranging over the variable's own bit segment lets the compiler
		// drop the per-bit bounds check and index arithmetic.
		var v uint64
		for _, bit := range bits[i*bpv : (i+1)*bpv] {
			v = v<<1 | uint64(bit)
		}
		if gray {
			v = GrayToBinary(v)
		}
		dst[i] = f.Lo + float64(v)*(f.Hi-f.Lo)/maxv
	}
}

// GrayToBinary converts a reflected Gray code to its binary value.
func GrayToBinary(g uint64) uint64 {
	for shift := uint(32); shift >= 1; shift >>= 1 {
		g ^= g >> shift
	}
	return g
}

// BinaryToGray converts a binary value to its reflected Gray code.
func BinaryToGray(b uint64) uint64 { return b ^ (b >> 1) }

// EvalBits decodes (plain binary) and evaluates in one step.
func (f *Function) EvalBits(bits []byte, rng *rand.Rand) float64 {
	return f.Eval(f.Decode(bits), rng)
}

// EvalBitsGray decodes (Gray) and evaluates in one step.
func (f *Function) EvalBitsGray(bits []byte, rng *rand.Rand) float64 {
	return f.Eval(f.DecodeGray(bits), rng)
}

// EvalBitsInto is EvalBits/EvalBitsGray with caller-owned decode
// scratch (length f.Vars), so a tight evaluation loop allocates
// nothing. Results are bit-identical to the allocating forms.
func (f *Function) EvalBitsInto(scratch []float64, bits []byte, gray bool, rng *rand.Rand) float64 {
	f.DecodeInto(scratch, bits, gray)
	return f.eval(scratch, rng)
}

// All returns the Table 1 test bed, F1..F8 in order.
func All() []*Function { return []*Function{F1, F2, F3, F4, F5, F6, F7, F8} }

// ByNo returns function number no (1..8).
func ByNo(no int) *Function {
	if no < 1 || no > 8 {
		panic(fmt.Sprintf("functions: no such function F%d", no))
	}
	return All()[no-1]
}

// F1 is DeJong's sphere: sum x_i^2, 3 vars in [-5.12, 5.12], min 0.
var F1 = &Function{
	No: 1, Name: "sphere", Vars: 3, BitsPerVar: 10, Lo: -5.12, Hi: 5.12, Min: 0, OptTarget: 0.01,
	eval: func(x []float64, _ *rand.Rand) float64 {
		s := 0.0
		for _, v := range x {
			s += v * v
		}
		return s
	},
}

// F2 is Rosenbrock's saddle: 100(x1^2-x2)^2 + (1-x1)^2 in [-2.048,
// 2.048], min 0 at (1,1). (Table 1 prints the classical DeJong form.)
var F2 = &Function{
	No: 2, Name: "rosenbrock", Vars: 2, BitsPerVar: 12, Lo: -2.048, Hi: 2.048, Min: 0, OptTarget: 0.01,
	eval: func(x []float64, _ *rand.Rand) float64 {
		a := x[0]*x[0] - x[1]
		b := 1 - x[0]
		return 100*a*a + b*b
	},
}

// F3 is DeJong's step function. Table 1 writes sum integer(x_i) with
// minimum listed as 0; we use the standard normalized form
// 30 + sum floor(x_i) (5 vars in [-5.12, 5.12]) whose minimum is exactly
// 0, matching the table's minimum column.
var F3 = &Function{
	No: 3, Name: "step", Vars: 5, BitsPerVar: 10, Lo: -5.12, Hi: 5.12, Min: 0, OptTarget: 0.49,
	eval: func(x []float64, _ *rand.Rand) float64 {
		s := 30.0
		for _, v := range x {
			s += math.Floor(v)
		}
		return s
	},
}

// F4 is DeJong's noisy quartic: sum i*x_i^4 + Gauss(0,1), 30 vars in
// [-1.28, 1.28]. The deterministic part's minimum is 0; the table's
// "<= -2.5" reflects the noise term's best draws over a run.
var F4 = &Function{
	No: 4, Name: "quartic+noise", Vars: 30, BitsPerVar: 8, Lo: -1.28, Hi: 1.28, Min: 0, OptTarget: -2.5, Noisy: true,
	eval: func(x []float64, rng *rand.Rand) float64 {
		s := 0.0
		for i, v := range x {
			s += float64(i+1) * v * v * v * v
		}
		if rng != nil {
			s += rng.NormFloat64()
		}
		return s
	},
}

// foxholes is the 5x5 grid of Shekel wells at coordinates
// {-32,-16,0,16,32}^2.
var foxholes = func() (a [2][25]float64) {
	pts := []float64{-32, -16, 0, 16, 32}
	for j := 0; j < 25; j++ {
		a[0][j] = pts[j%5]
		a[1][j] = pts[j/5]
	}
	return
}()

// F5 is Shekel's foxholes: [0.002 + sum_j 1/(j + sum_i (x_i-a_ij)^6)]^-1,
// 2 vars in [-65.536, 65.536], min ~0.998004 at (-32,-32).
var F5 = &Function{
	No: 5, Name: "foxholes", Vars: 2, BitsPerVar: 17, Lo: -65.536, Hi: 65.536, Min: 0.998004, OptTarget: 1.008,
	eval: func(x []float64, _ *rand.Rand) float64 {
		sum := 0.002
		for j := 0; j < 25; j++ {
			d0 := x[0] - foxholes[0][j]
			d1 := x[1] - foxholes[1][j]
			g := float64(j+1) + math.Pow(d0, 6) + math.Pow(d1, 6)
			sum += 1 / g
		}
		return 1 / sum
	},
}

// F6 is the Rastrigin function: nA + sum (x_i^2 - A cos(2 pi x_i)),
// A=10, 20 vars in [-5.12, 5.12], min 0 at the origin.
var F6 = &Function{
	No: 6, Name: "rastrigin", Vars: 20, BitsPerVar: 10, Lo: -5.12, Hi: 5.12, Min: 0, OptTarget: 0.5,
	eval: func(x []float64, _ *rand.Rand) float64 {
		const A = 10.0
		s := A * float64(len(x))
		for _, v := range x {
			s += v*v - A*math.Cos(2*math.Pi*v)
		}
		return s
	},
}

// F7 is the Schwefel function: sum -x_i sin(sqrt(|x_i|)), 10 vars in
// [-500, 500], min ~-4189.83 at x_i ~ 420.9687.
var F7 = &Function{
	No: 7, Name: "schwefel", Vars: 10, BitsPerVar: 10, Lo: -500, Hi: 500, Min: -4189.83, OptTarget: -4169,
	eval: func(x []float64, _ *rand.Rand) float64 {
		s := 0.0
		for _, v := range x {
			s += -v * math.Sin(math.Sqrt(math.Abs(v)))
		}
		return s
	},
}

// F8 is the Griewank function: sum x_i^2/4000 - prod cos(x_i/sqrt(i)) + 1,
// 10 vars in [-600, 600], min 0 at the origin.
var F8 = &Function{
	No: 8, Name: "griewank", Vars: 10, BitsPerVar: 10, Lo: -600, Hi: 600, Min: 0, OptTarget: 0.5,
	eval: func(x []float64, _ *rand.Rand) float64 {
		s := 0.0
		p := 1.0
		for i, v := range x {
			s += v * v / 4000
			p *= math.Cos(v / math.Sqrt(float64(i+1)))
		}
		return s - p + 1
	},
}
