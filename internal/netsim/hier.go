package netsim

import (
	"fmt"

	"nscc/internal/sim"
)

// HierConfig describes a hierarchical rack/spine interconnect: nodes
// live on per-rack shared buses (each a copy of the paper's Ethernet),
// and racks talk through dedicated full-duplex uplinks into a
// store-and-forward spine. This is the fabric shape a 1000+-node
// cluster actually has — a single shared bus saturates at a few tens of
// chattering nodes, while racks keep local traffic local and only
// inter-rack frames pay for (and queue on) the uplinks.
type HierConfig struct {
	// RackSize is the number of nodes per rack bus. Node id n lives in
	// rack n/RackSize.
	RackSize int
	// Bus parameterizes each rack's shared medium. ContentionBackoff is
	// ignored here: rack buses are pure FIFO so the fabric stays
	// rng-free on the default path (LossProb is the only draw).
	Bus Config
	// UplinkBandwidthBps is the rack-to-spine link rate, applied to
	// both the uplink (source rack to spine) and the downlink (spine to
	// destination rack). Each is an independent FIFO queue.
	UplinkBandwidthBps float64
	// SpineLatency is the store-and-forward crossing time between an
	// uplink's tail and the matching downlink's head.
	SpineLatency sim.Duration
}

// DefaultHierConfig returns a cluster of 32-node paper-Ethernet racks
// behind 100 Mbps uplinks — roughly the "building full of the paper's
// departmental networks joined by a faster backbone" the scaling
// experiments model.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		RackSize:           32,
		Bus:                DefaultConfig(),
		UplinkBandwidthBps: 100e6,
		SpineLatency:       20 * sim.Microsecond,
	}
}

// Hier is the hierarchical fabric. Every link — each rack bus, each
// uplink, each downlink — is modeled as a FIFO queue by reservation:
// the link's freeAt clock is advanced at send time, so a frame's whole
// store-and-forward itinerary is priced when it is offered and exactly
// one engine event (the final delivery) is scheduled per destination
// rack crossing. That keeps the event population O(messages), not
// O(messages × hops), which is what makes million-message runs
// tractable.
type Hier struct {
	eng      *sim.Engine
	cfg      HierConfig
	handlers []Handler
	names    []string

	busFreeAt  []sim.Time // per rack: the shared medium
	upFreeAt   []sim.Time // per rack: rack → spine
	downFreeAt []sim.Time // per rack: spine → rack

	queued int
	stats  Stats

	// Multicast scratch: rackAt memoizes the delivery time computed for
	// each destination rack within one call, rackStamp marks which
	// entries belong to the current call (stamp), so grouping the
	// destination list by rack allocates nothing.
	rackAt    []sim.Time
	rackStamp []uint64
	stamp     uint64

	// frames is the free list of pooled delivery callbacks, one per
	// destination (see Network's frame type for the idiom).
	frames []*hFrame

	// bcast is Broadcast's reusable destination list.
	bcast []int

	rng lossRng
}

// lossRng defers constructing the loss rng until the first draw, so the
// default lossless configuration consumes no rng stream at all and
// fault injection stays an orthogonal concern (faults.Injector).
type lossRng struct {
	eng *sim.Engine
	rng interface{ Float64() float64 }
}

func (l *lossRng) Float64() float64 {
	if l.rng == nil {
		l.rng = l.eng.NewRng(1<<20 + 1)
	}
	return l.rng.Float64()
}

var _ Fabric = (*Hier)(nil)

// hFrame is a pooled in-flight delivery: the callback scheduled for one
// destination's arrival time.
type hFrame struct {
	h       *Hier
	src     int
	dst     int
	payload interface{}
	sentAt  sim.Time
}

func (h *Hier) getFrame(src, dst int, payload interface{}, sentAt sim.Time) *hFrame {
	var f *hFrame
	if ln := len(h.frames); ln > 0 {
		f = h.frames[ln-1]
		h.frames[ln-1] = nil
		h.frames = h.frames[:ln-1]
	} else {
		f = &hFrame{h: h}
	}
	f.src, f.dst, f.payload, f.sentAt = src, dst, payload, sentAt
	return f
}

// Run delivers the frame and returns the object to the pool.
func (f *hFrame) Run() {
	h := f.h
	h.queued--
	h.stats.Delivered++
	h.handlers[f.dst](f.src, f.payload, f.sentAt)
	f.payload = nil
	h.frames = append(h.frames, f)
}

// NewHier creates a hierarchical fabric on eng.
func NewHier(eng *sim.Engine, cfg HierConfig) *Hier {
	if cfg.RackSize <= 0 {
		panic("netsim: hier rack size must be positive")
	}
	if cfg.Bus.BandwidthBps <= 0 {
		panic("netsim: hier bus bandwidth must be positive")
	}
	if cfg.UplinkBandwidthBps <= 0 {
		panic("netsim: hier uplink bandwidth must be positive")
	}
	return &Hier{eng: eng, cfg: cfg, rng: lossRng{eng: eng}}
}

// Engine returns the engine the fabric is attached to.
func (h *Hier) Engine() *sim.Engine { return h.eng }

// Config returns the fabric configuration.
func (h *Hier) Config() HierConfig { return h.cfg }

// Attach registers a node and returns its id; rack link state grows as
// node ids cross rack boundaries.
func (h *Hier) Attach(name string, hd Handler) int {
	id := len(h.handlers)
	h.handlers = append(h.handlers, hd)
	h.names = append(h.names, name)
	for rack := id / h.cfg.RackSize; rack >= len(h.busFreeAt); {
		h.busFreeAt = append(h.busFreeAt, 0)
		h.upFreeAt = append(h.upFreeAt, 0)
		h.downFreeAt = append(h.downFreeAt, 0)
		h.rackAt = append(h.rackAt, 0)
		h.rackStamp = append(h.rackStamp, 0)
	}
	return id
}

// Nodes reports the number of attached nodes.
func (h *Hier) Nodes() int { return len(h.handlers) }

// NodeName returns the name a node registered with.
func (h *Hier) NodeName(id int) string { return h.names[id] }

// RackOf returns the rack a node lives in.
func (h *Hier) RackOf(id int) int { return id / h.cfg.RackSize }

// Racks reports the number of racks with at least one attached node.
func (h *Hier) Racks() int { return len(h.busFreeAt) }

func (h *Hier) busTx(size int) sim.Duration {
	bits := float64(size+h.cfg.Bus.FrameOverhead) * 8
	return sim.DurationOf(bits / h.cfg.Bus.BandwidthBps)
}

func (h *Hier) linkTx(size int) sim.Duration {
	bits := float64(size+h.cfg.Bus.FrameOverhead) * 8
	return sim.DurationOf(bits / h.cfg.UplinkBandwidthBps)
}

// reserve advances a link's freeAt clock past one transmission starting
// no earlier than ready, accumulating the queue and occupancy stats,
// and returns when the transmission completes.
func (h *Hier) reserve(freeAt *sim.Time, ready sim.Time, tx sim.Duration, size int) sim.Time {
	start := ready
	if *freeAt > start {
		start = *freeAt
	}
	h.stats.QueueDelay += start.Sub(ready)
	h.stats.BusyTime += tx
	h.stats.Bytes += int64(size + h.cfg.Bus.FrameOverhead)
	end := start.Add(tx)
	*freeAt = end
	return end
}

// srcAdmit prices the source-rack bus occupancy shared by every path
// out of src — the sender's NIC is free (onWire) when it completes.
func (h *Hier) srcAdmit(src, size int, onWire func()) sim.Time {
	h.stats.Frames++
	endBus := h.reserve(&h.busFreeAt[h.RackOf(src)], h.eng.Now(), h.busTx(size), size)
	if onWire != nil {
		h.eng.Schedule(endBus, onWire)
	}
	return endBus
}

// remoteDeliverAt prices the store-and-forward itinerary of one frame
// copy from the source rack's uplink to the destination rack's bus:
// uplink (queued behind earlier departures), spine crossing, downlink,
// then the destination rack's shared medium.
func (h *Hier) remoteDeliverAt(endBus sim.Time, srcRack, dstRack, size int) sim.Time {
	upEnd := h.reserve(&h.upFreeAt[srcRack], endBus.Add(h.cfg.Bus.PropDelay), h.linkTx(size), size)
	downEnd := h.reserve(&h.downFreeAt[dstRack], upEnd.Add(h.cfg.SpineLatency), h.linkTx(size), size)
	busEnd := h.reserve(&h.busFreeAt[dstRack], downEnd, h.busTx(size), size)
	return busEnd.Add(h.cfg.Bus.PropDelay)
}

// schedule queues one delivery, applying per-delivery loss.
func (h *Hier) schedule(at sim.Time, src, dst, size int, payload interface{}, sentAt sim.Time) {
	if p := h.cfg.Bus.LossProb; p > 0 && h.rng.Float64() < p {
		h.stats.Dropped++
		return
	}
	h.queued++
	if h.queued > h.stats.MaxQueueLen {
		h.stats.MaxQueueLen = h.queued
	}
	h.eng.ScheduleRunner(at, h.getFrame(src, dst, payload, sentAt))
}

// Send transmits payload from src to dst.
func (h *Hier) Send(src, dst, size int, payload interface{}) {
	h.Unicast(src, dst, size, payload, nil)
}

// Unicast transmits payload to one destination. Same-rack traffic costs
// one bus occupancy plus propagation, exactly like the flat Network;
// cross-rack traffic additionally queues on the source uplink, crosses
// the spine, queues on the destination downlink, and finally occupies
// the destination rack's bus.
func (h *Hier) Unicast(src, dst, size int, payload interface{}, onWire func()) {
	if src < 0 || src >= len(h.handlers) {
		panic(fmt.Sprintf("netsim: send from unknown node %d", src))
	}
	if dst < 0 || dst >= len(h.handlers) {
		panic(fmt.Sprintf("netsim: send to unknown node %d", dst))
	}
	sentAt := h.eng.Now()
	endBus := h.srcAdmit(src, size, onWire)
	rs, rd := h.RackOf(src), h.RackOf(dst)
	at := endBus.Add(h.cfg.Bus.PropDelay)
	if rs != rd {
		at = h.remoteDeliverAt(endBus, rs, rd, size)
	}
	h.schedule(at, src, dst, size, payload, sentAt)
}

// Multicast delivers one logical message to every node in dsts. The
// source rack's bus carries the frame once, reaching all same-rack
// destinations as a broadcast medium would; each *distinct* destination
// rack then receives exactly one forwarded copy (uplink + spine +
// downlink + that rack's bus), shared by all of its destinations — so a
// cluster-wide broadcast costs O(racks) wire crossings, not O(nodes).
func (h *Hier) Multicast(src int, dsts []int, size int, payload interface{}, onWire func()) {
	if len(dsts) == 1 {
		h.Unicast(src, dsts[0], size, payload, onWire)
		return
	}
	if src < 0 || src >= len(h.handlers) {
		panic(fmt.Sprintf("netsim: multicast from unknown node %d", src))
	}
	for _, dst := range dsts {
		if dst < 0 || dst >= len(h.handlers) {
			panic(fmt.Sprintf("netsim: send to unknown node %d", dst))
		}
	}
	sentAt := h.eng.Now()
	endBus := h.srcAdmit(src, size, onWire)
	rs := h.RackOf(src)
	localAt := endBus.Add(h.cfg.Bus.PropDelay)
	h.stamp++
	// Uplink copies depart in destination-list order (first appearance
	// of each rack), so the itinerary — and therefore the delivery
	// schedule — is a pure function of the call sequence: determinism
	// holds at any worker count because the fabric runs under the
	// single-threaded engine.
	for _, dst := range dsts {
		rd := h.RackOf(dst)
		at := localAt
		if rd != rs {
			if h.rackStamp[rd] != h.stamp {
				h.rackStamp[rd] = h.stamp
				h.rackAt[rd] = h.remoteDeliverAt(endBus, rs, rd, size)
			}
			at = h.rackAt[rd]
		}
		h.schedule(at, src, dst, size, payload, sentAt)
	}
}

// Broadcast multicasts payload from src to every other attached node:
// one source-bus occupancy plus one forwarded copy per remote rack. The
// destination list lives in a reusable buffer (Multicast does not
// retain it past the call).
func (h *Hier) Broadcast(src, size int, payload interface{}) {
	dsts := h.bcast[:0]
	for dst := range h.handlers {
		if dst != src {
			dsts = append(dsts, dst)
		}
	}
	h.bcast = dsts
	h.Multicast(src, dsts, size, payload, nil)
}

// Stats returns a snapshot of the fabric counters.
func (h *Hier) Stats() Stats { return h.stats }

// Utilization reports the fraction of elapsed virtual time the fabric's
// links (all racks and uplinks summed) spent transmitting.
func (h *Hier) Utilization() float64 {
	if h.eng.Now() == 0 {
		return 0
	}
	return h.stats.BusyTime.Seconds() / h.eng.Now().Seconds()
}
