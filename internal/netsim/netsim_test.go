package netsim

import (
	"testing"
	"testing/quick"

	"nscc/internal/sim"
)

func newTestNet(seed int64, cfg Config) (*sim.Engine, *Network) {
	eng := sim.NewEngine(seed)
	return eng, New(eng, cfg)
}

// plainConfig has no contention jitter or loss, for exact-timing tests.
func plainConfig() Config {
	return Config{
		BandwidthBps:  10e6,
		PropDelay:     50 * sim.Microsecond,
		FrameOverhead: 100,
	}
}

type rcvd struct {
	src     int
	payload interface{}
	sentAt  sim.Time
	at      sim.Time
}

func collector(eng *sim.Engine, got *[]rcvd) Handler {
	return func(src int, payload interface{}, sentAt sim.Time) {
		*got = append(*got, rcvd{src, payload, sentAt, eng.Now()})
	}
}

func TestSingleFrameTiming(t *testing.T) {
	eng, net := newTestNet(1, plainConfig())
	var got []rcvd
	dst := net.Attach("dst", collector(eng, &got))
	src := net.Attach("src", nil)

	net.Send(src, dst, 900, "hello")
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	// (900+100)*8 bits / 10 Mbps = 800 us, + 50 us propagation.
	want := sim.Time(850 * sim.Microsecond)
	if got[0].at != want {
		t.Fatalf("delivered at %v, want %v", got[0].at, want)
	}
	if got[0].payload != "hello" || got[0].src != src || got[0].sentAt != 0 {
		t.Fatalf("frame metadata wrong: %+v", got[0])
	}
}

func TestBusSerializesFrames(t *testing.T) {
	eng, net := newTestNet(1, plainConfig())
	var got []rcvd
	dst := net.Attach("dst", collector(eng, &got))
	src := net.Attach("src", nil)

	// Two frames offered at t=0 must be delivered one transmission
	// apart, not simultaneously.
	net.Send(src, dst, 900, 1)
	net.Send(src, dst, 900, 2)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2", len(got))
	}
	gap := got[1].at.Sub(got[0].at)
	if gap != 800*sim.Microsecond {
		t.Fatalf("delivery gap %v, want 800us (one tx time)", gap)
	}
	if got[0].payload != 1 || got[1].payload != 2 {
		t.Fatalf("FIFO order violated: %v, %v", got[0].payload, got[1].payload)
	}
}

func TestQueueDelayGrowsWithLoad(t *testing.T) {
	delayFor := func(frames int) sim.Duration {
		eng, net := newTestNet(1, plainConfig())
		dst := net.Attach("dst", func(int, interface{}, sim.Time) {})
		src := net.Attach("src", nil)
		for i := 0; i < frames; i++ {
			net.Send(src, dst, 1400, nil)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return net.Stats().QueueDelay
	}
	light, heavy := delayFor(2), delayFor(50)
	if heavy <= light*10 {
		t.Fatalf("queue delay did not grow with load: light=%v heavy=%v", light, heavy)
	}
}

func TestBroadcast(t *testing.T) {
	eng, net := newTestNet(1, plainConfig())
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		net.Attach("n", func(int, interface{}, sim.Time) { counts[i]++ })
	}
	net.Broadcast(0, 100, "b")
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 {
		t.Fatal("broadcast delivered to its own source")
	}
	for i := 1; i < 4; i++ {
		if counts[i] != 1 {
			t.Fatalf("node %d got %d frames, want 1", i, counts[i])
		}
	}
	// A broadcast occupies the shared bus exactly once.
	if net.Stats().Frames != 1 {
		t.Fatalf("Frames = %d, want 1 (single bus occupancy)", net.Stats().Frames)
	}
	if net.Stats().Delivered != 3 {
		t.Fatalf("Delivered = %d, want 3 copies", net.Stats().Delivered)
	}
}

func TestMulticastTiming(t *testing.T) {
	eng, net := newTestNet(1, plainConfig())
	var times []sim.Time
	for i := 0; i < 3; i++ {
		net.Attach("dst", func(int, interface{}, sim.Time) { times = append(times, eng.Now()) })
	}
	src := net.Attach("src", nil)
	net.Multicast(src, []int{0, 1, 2}, 900, nil, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(850 * sim.Microsecond)
	for _, at := range times {
		if at != want {
			t.Fatalf("multicast copies delivered at %v, want all at %v", times, want)
		}
	}
}

func TestLossInjection(t *testing.T) {
	cfg := plainConfig()
	cfg.LossProb = 0.5
	eng, net := newTestNet(7, cfg)
	delivered := 0
	dst := net.Attach("dst", func(int, interface{}, sim.Time) { delivered++ })
	src := net.Attach("src", nil)
	const n = 400
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			net.Send(src, dst, 100, nil)
			p.Sleep(sim.Millisecond)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.Dropped+st.Delivered != n {
		t.Fatalf("dropped %d + delivered %d != %d", st.Dropped, st.Delivered, n)
	}
	if st.Dropped < n/4 || st.Dropped > 3*n/4 {
		t.Fatalf("dropped %d of %d at p=0.5: outside sane range", st.Dropped, n)
	}
}

func TestUtilization(t *testing.T) {
	eng, net := newTestNet(1, plainConfig())
	dst := net.Attach("dst", func(int, interface{}, sim.Time) {})
	src := net.Attach("src", nil)
	// Saturate: offer frames back-to-back for a while.
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			net.Send(src, dst, 1150, nil) // 1 ms tx each
			p.Sleep(sim.Millisecond)      // exactly at capacity
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	u := net.Utilization()
	if u < 0.9 || u > 1.01 {
		t.Fatalf("utilization %v, want ~1.0 at saturation", u)
	}
}

func TestContentionBackoffAddsDelay(t *testing.T) {
	run := func(backoff float64) sim.Time {
		cfg := plainConfig()
		cfg.ContentionBackoff = backoff
		eng, net := newTestNet(3, cfg)
		var last sim.Time
		dst := net.Attach("dst", func(int, interface{}, sim.Time) { last = eng.Now() })
		src := net.Attach("src", nil)
		for i := 0; i < 30; i++ {
			net.Send(src, dst, 1000, nil)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	if run(2.0) <= run(0) {
		t.Fatal("contention backoff did not delay completion under a burst")
	}
}

func TestLoaderOfferedRate(t *testing.T) {
	eng, net := newTestNet(5, plainConfig())
	l := StartLoader(net, 2e6, 1024) // 2 Mbps
	horizon := sim.Time(2 * sim.Second)
	if err := eng.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	l.Stop()
	// 2 Mbps / (1024*8 bits) ~ 244 msgs/s -> ~488 over 2 s.
	if l.Sent() < 400 || l.Sent() > 580 {
		t.Fatalf("loader sent %d messages in 2s at 2 Mbps, want ~488", l.Sent())
	}
	if u := net.Utilization(); u < 0.15 || u > 0.3 {
		t.Fatalf("utilization %v under 2 Mbps loader, want ~0.22", u)
	}
}

func TestLoaderZeroRateInert(t *testing.T) {
	eng, net := newTestNet(5, plainConfig())
	l := StartLoader(net, 0, 1024)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Sent() != 0 || net.Stats().Frames != 0 {
		t.Fatal("zero-rate loader generated traffic")
	}
}

func TestSendToUnknownNodePanics(t *testing.T) {
	_, net := newTestNet(1, plainConfig())
	src := net.Attach("src", nil)
	defer func() {
		if recover() == nil {
			t.Error("send to unknown node did not panic")
		}
	}()
	net.Send(src, 99, 10, nil)
}

// Property: conservation — every offered frame is either delivered or
// dropped, and pairwise FIFO holds from a single sender.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, loss bool) bool {
		n := int(nRaw%64) + 1
		cfg := DefaultConfig()
		if loss {
			cfg.LossProb = 0.3
		}
		eng, net := newTestNet(seed, cfg)
		var seq []int
		dst := net.Attach("dst", func(_ int, p interface{}, _ sim.Time) {
			seq = append(seq, p.(int))
		})
		src := net.Attach("src", nil)
		for i := 0; i < n; i++ {
			net.Send(src, dst, 200, i)
		}
		if err := eng.Run(); err != nil {
			return false
		}
		st := net.Stats()
		if st.Delivered+st.Dropped != int64(n) {
			return false
		}
		for i := 1; i < len(seq); i++ {
			if seq[i] <= seq[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPerNodeTraffic(t *testing.T) {
	eng, net := newTestNet(1, plainConfig())
	dst := net.Attach("dst", func(int, interface{}, sim.Time) {})
	a := net.Attach("a", nil)
	b := net.Attach("b", nil)
	net.Send(a, dst, 100, nil)
	net.Send(a, dst, 100, nil)
	net.Send(b, dst, 500, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.NodeTraffic(a).Frames != 2 || net.NodeTraffic(b).Frames != 1 {
		t.Fatalf("per-node frames: a=%d b=%d", net.NodeTraffic(a).Frames, net.NodeTraffic(b).Frames)
	}
	if net.NodeTraffic(b).Bytes != 600 { // 500 + 100 overhead
		t.Fatalf("b bytes = %d", net.NodeTraffic(b).Bytes)
	}
	if net.NodeTraffic(dst).Frames != 0 {
		t.Fatal("receiver charged for traffic it did not send")
	}
}
