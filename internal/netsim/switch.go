package netsim

import (
	"fmt"

	"nscc/internal/sim"
	"nscc/internal/trace"
	"nscc/internal/tseries"
)

// Fabric is the interconnect abstraction: the shared-Ethernet bus
// (New) and the SP2-style crossbar switch (NewSwitch) both implement
// it, so the message layer and the experiments can swap interconnects.
// The paper ran on the Ethernet because its applications' communication
// demands made the latency-rich network the interesting case, expecting
// that "applications with higher communication requirements will see
// similar benefits ... even on faster interconnects such as the IBM
// SP2's high-speed switch" (§4.1) — the switch model lets that claim be
// exercised.
type Fabric interface {
	// Attach registers a node and returns its id.
	Attach(name string, h Handler) int
	// Multicast delivers one logical message from src to every node in
	// dsts; the onWire callback fires when the sender's link is free
	// again. How many physical transfers that takes is the fabric's
	// business (one bus occupancy on Ethernet; one unicast per
	// destination on a switch).
	Multicast(src int, dsts []int, size int, payload interface{}, onWire func())
	// Unicast is single-destination Multicast without the general
	// path's slice allocations — the hot path for point-to-point
	// traffic.
	Unicast(src, dst, size int, payload interface{}, onWire func())
	// Send is Unicast without the onWire callback.
	Send(src, dst, size int, payload interface{})
	// Nodes reports the number of attached nodes.
	Nodes() int
	// Stats returns a snapshot of the fabric counters.
	Stats() Stats
	// Engine returns the simulation engine.
	Engine() *sim.Engine
}

var (
	_ Fabric = (*Network)(nil)
	_ Fabric = (*Switch)(nil)
)

// SwitchConfig describes an SP2-class crossbar switch: every node has a
// dedicated full-duplex link into a non-blocking fabric, so transfers
// between disjoint pairs proceed in parallel and only a sender's own
// egress link serializes its traffic.
type SwitchConfig struct {
	// LinkBandwidthBps is the per-node link rate (the SP2's high
	// performance switch delivered ~40 MB/s per node).
	LinkBandwidthBps float64
	// Latency is the end-to-end fabric latency per packet.
	Latency sim.Duration
	// FrameOverhead is the per-message protocol header, in bytes.
	FrameOverhead int
}

// DefaultSwitchConfig returns SP2-high-performance-switch-scale
// parameters.
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{
		LinkBandwidthBps: 320e6, // ~40 MB/s
		Latency:          40 * sim.Microsecond,
		FrameOverhead:    64,
	}
}

// Switch is a non-blocking crossbar interconnect.
type Switch struct {
	eng      *sim.Engine
	cfg      SwitchConfig
	handlers []Handler
	names    []string

	egressFreeAt []sim.Time // per source node
	stats        Stats

	// Windowed series resolved by SetSeries (nil when off).
	serBusy    *tseries.Series
	serBacklog *tseries.Series

	// frames is the free list of pooled delivery callbacks (one per
	// in-flight transfer; a multicast uses one per destination since
	// the switch sends one copy per receiver).
	frames []*swFrame
}

// swFrame is a pooled in-flight switch transfer: the delivery callback
// scheduled for one destination's arrival. See Network's frame type —
// same trick, per-destination because the crossbar has no shared
// medium.
type swFrame struct {
	s       *Switch
	src     int
	dst     int
	payload interface{}
	sentAt  sim.Time
}

// getFrame takes a transfer object from the pool (or allocates one).
func (s *Switch) getFrame(src, dst int, payload interface{}, sentAt sim.Time) *swFrame {
	var f *swFrame
	if ln := len(s.frames); ln > 0 {
		f = s.frames[ln-1]
		s.frames[ln-1] = nil
		s.frames = s.frames[:ln-1]
	} else {
		f = &swFrame{s: s}
	}
	f.src, f.dst, f.payload, f.sentAt = src, dst, payload, sentAt
	return f
}

// Run delivers the transfer and returns the object to the pool.
func (f *swFrame) Run() {
	s := f.s
	s.stats.Delivered++
	s.handlers[f.dst](f.src, f.payload, f.sentAt)
	f.payload = nil
	s.frames = append(s.frames, f)
}

// SetSeries wires the switch's windowed simulated-time series into
// set: counter "net.busy_us" (microseconds of egress-link occupancy,
// attributed to the window each transfer started in) and gauge
// "net.backlog_us" (per-send egress backlog — how long the sender's
// own link made the transfer wait). Strictly observational; a nil set
// is a no-op.
func (s *Switch) SetSeries(set *tseries.Set) {
	s.serBusy = set.Counter("net.busy_us")
	s.serBacklog = set.Gauge("net.backlog_us")
}

// NewSwitch creates a switch fabric on eng.
func NewSwitch(eng *sim.Engine, cfg SwitchConfig) *Switch {
	if cfg.LinkBandwidthBps <= 0 {
		panic("netsim: switch link bandwidth must be positive")
	}
	return &Switch{eng: eng, cfg: cfg}
}

// Engine returns the engine the switch is attached to.
func (s *Switch) Engine() *sim.Engine { return s.eng }

// Config returns the switch configuration.
func (s *Switch) Config() SwitchConfig { return s.cfg }

// Attach registers a node with the switch and returns its id.
func (s *Switch) Attach(name string, h Handler) int {
	s.handlers = append(s.handlers, h)
	s.names = append(s.names, name)
	s.egressFreeAt = append(s.egressFreeAt, 0)
	return len(s.handlers) - 1
}

// Nodes reports the number of attached nodes.
func (s *Switch) Nodes() int { return len(s.handlers) }

// NodeName returns the name a node registered with.
func (s *Switch) NodeName(id int) string { return s.names[id] }

func (s *Switch) txTime(size int) sim.Duration {
	bits := float64(size+s.cfg.FrameOverhead) * 8
	return sim.DurationOf(bits / s.cfg.LinkBandwidthBps)
}

// Send transmits payload from src to dst over src's egress link.
func (s *Switch) Send(src, dst, size int, payload interface{}) {
	s.Unicast(src, dst, size, payload, nil)
}

// Unicast transmits payload to one destination without the
// destination-slice allocation of the general Multicast path.
func (s *Switch) Unicast(src, dst, size int, payload interface{}, onWire func()) {
	if src < 0 || src >= len(s.handlers) {
		panic(fmt.Sprintf("netsim: multicast from unknown node %d", src))
	}
	if dst < 0 || dst >= len(s.handlers) {
		panic(fmt.Sprintf("netsim: send to unknown node %d", dst))
	}
	now := s.eng.Now()
	start := now
	if s.egressFreeAt[src] > start {
		start = s.egressFreeAt[src]
	}
	if tr := s.eng.Tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(now), Ph: trace.PhaseCounter,
			Pid: trace.PidNet, Tid: src, Cat: "net", Name: "egress",
			K1: "backlog_us", V1: int64(start.Sub(now)) / 1000,
			K2: "fanout", V2: 1})
	}
	tx := s.txTime(size)
	s.stats.Frames++
	s.stats.Bytes += int64(size + s.cfg.FrameOverhead)
	s.stats.BusyTime += tx
	s.stats.QueueDelay += start.Sub(now)
	s.serBusy.Add(start, float64(tx)/1e3)
	s.serBacklog.Add(now, float64(start.Sub(now))/1e3)
	end := start.Add(tx)
	s.eng.ScheduleRunner(end.Add(s.cfg.Latency), s.getFrame(src, dst, payload, now))
	s.egressFreeAt[src] = end
	if onWire != nil {
		s.eng.Schedule(end, onWire)
	}
}

// Multicast sends one copy per destination: a switch has no broadcast
// medium, so a multicast costs the sender one egress transmission per
// receiver — the structural difference from the Ethernet that makes
// all-to-all exchanges scale differently on the two fabrics.
func (s *Switch) Multicast(src int, dsts []int, size int, payload interface{}, onWire func()) {
	if len(dsts) == 1 {
		s.Unicast(src, dsts[0], size, payload, onWire)
		return
	}
	if src < 0 || src >= len(s.handlers) {
		panic(fmt.Sprintf("netsim: multicast from unknown node %d", src))
	}
	now := s.eng.Now()
	start := now
	if s.egressFreeAt[src] > start {
		start = s.egressFreeAt[src]
	}
	if tr := s.eng.Tracer(); tr != nil {
		// Per-sender egress backlog: how long this multicast waits for
		// the node's own link (the switch's only queueing point).
		tr.Emit(trace.Event{TS: int64(now), Ph: trace.PhaseCounter,
			Pid: trace.PidNet, Tid: src, Cat: "net", Name: "egress",
			K1: "backlog_us", V1: int64(start.Sub(now)) / 1000,
			K2: "fanout", V2: int64(len(dsts))})
	}
	s.serBacklog.Add(now, float64(start.Sub(now))/1e3)
	for _, dst := range dsts {
		if dst < 0 || dst >= len(s.handlers) {
			panic(fmt.Sprintf("netsim: send to unknown node %d", dst))
		}
		tx := s.txTime(size)
		s.stats.Frames++
		s.stats.Bytes += int64(size + s.cfg.FrameOverhead)
		s.stats.BusyTime += tx
		s.stats.QueueDelay += start.Sub(now)
		s.serBusy.Add(start, float64(tx)/1e3)
		end := start.Add(tx)
		s.eng.ScheduleRunner(end.Add(s.cfg.Latency), s.getFrame(src, dst, payload, now))
		start = end
	}
	s.egressFreeAt[src] = start
	if onWire != nil {
		s.eng.Schedule(start, onWire)
	}
}

// Stats returns a snapshot of the switch counters.
func (s *Switch) Stats() Stats { return s.stats }
