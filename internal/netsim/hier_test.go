package netsim

import (
	"testing"

	"nscc/internal/sim"
)

// newTestHier builds a fabric with round numbers: 8 Mbps rack buses
// (1000-byte frame = 1 ms), no prop delay or framing, 80 Mbps uplinks
// (1000-byte frame = 100 µs), 100 µs spine crossing, 4 nodes per rack.
func newTestHier(seed int64) (*sim.Engine, *Hier) {
	eng := sim.NewEngine(seed)
	cfg := HierConfig{
		RackSize: 4,
		Bus: Config{
			BandwidthBps:  8e6,
			PropDelay:     0,
			FrameOverhead: 0,
		},
		UplinkBandwidthBps: 80e6,
		SpineLatency:       100 * sim.Microsecond,
	}
	return eng, NewHier(eng, cfg)
}

func attachN(h *Hier, n int, hd Handler) {
	for i := 0; i < n; i++ {
		h.Attach("n", hd)
	}
}

func TestHierSameRackIsOneBusOccupancy(t *testing.T) {
	eng, h := newTestHier(1)
	var at sim.Time
	attachN(h, 1, func(int, interface{}, sim.Time) { at = eng.Now() })
	attachN(h, 1, nil)
	h.Send(1, 0, 1000, "x") // same rack: 1 ms bus, nothing else
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(1000 * sim.Microsecond); at != want {
		t.Fatalf("same-rack delivery at %v, want %v", at, want)
	}
}

func TestHierCrossRackStoreAndForward(t *testing.T) {
	eng, h := newTestHier(1)
	var at sim.Time
	attachN(h, 4, nil) // rack 0
	h.Attach("d", func(int, interface{}, sim.Time) { at = eng.Now() })
	h.Send(0, 4, 1000, "x")
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// source bus 1 ms + uplink 100 µs + spine 100 µs + downlink 100 µs +
	// destination bus 1 ms.
	if want := sim.Time(2300 * sim.Microsecond); at != want {
		t.Fatalf("cross-rack delivery at %v, want %v", at, want)
	}
}

func TestHierRacksIsolateLocalTraffic(t *testing.T) {
	// Simultaneous same-rack transfers in two different racks must not
	// serialize — the property the flat shared bus lacks.
	eng, h := newTestHier(1)
	var times []sim.Time
	hd := func(int, interface{}, sim.Time) { times = append(times, eng.Now()) }
	attachN(h, 8, hd) // racks 0 and 1
	h.Send(1, 0, 1000, nil)
	h.Send(5, 4, 1000, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(1000 * sim.Microsecond)
	if len(times) != 2 || times[0] != want || times[1] != want {
		t.Fatalf("transfers in distinct racks delivered at %v, want both at %v", times, want)
	}
}

func TestHierMulticastOneCopyPerRack(t *testing.T) {
	// An 11-destination broadcast spanning 3 racks: all same-rack
	// destinations hear the one source-bus frame; each remote rack gets
	// exactly one forwarded copy that all of its destinations share.
	eng, h := newTestHier(1)
	byRack := map[int][]sim.Time{}
	for i := 0; i < 12; i++ {
		i := i
		h.Attach("n", func(int, interface{}, sim.Time) {
			byRack[i/4] = append(byRack[i/4], eng.Now())
		})
	}
	wireAt := sim.Time(-1)
	h.Multicast(0, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 1000, nil,
		func() { wireAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The sender's bus is free after its single 1 ms occupancy.
	if want := sim.Time(1000 * sim.Microsecond); wireAt != want {
		t.Fatalf("onWire at %v, want %v (one bus occupancy)", wireAt, want)
	}
	if got := byRack[0]; len(got) != 3 {
		t.Fatalf("rack 0 deliveries: %d, want 3", len(got))
	}
	for _, at := range byRack[0] {
		if at != sim.Time(1000*sim.Microsecond) {
			t.Fatalf("local delivery at %v, want 1ms", at)
		}
	}
	// Rack 1's copy: uplink 100 µs + spine 100 µs + downlink 100 µs +
	// rack bus 1 ms after the source bus.
	for _, at := range byRack[1] {
		if at != sim.Time(2300*sim.Microsecond) {
			t.Fatalf("rack 1 delivery at %v, want 2.3ms", at)
		}
	}
	// Rack 2's uplink copy departs after rack 1's (the source uplink is
	// a FIFO queue): 100 µs later at every stage that queues.
	for _, at := range byRack[2] {
		if at != sim.Time(2400*sim.Microsecond) {
			t.Fatalf("rack 2 delivery at %v, want 2.4ms", at)
		}
	}
	if got := h.Stats().Delivered; got != 11 {
		t.Fatalf("delivered %d, want 11", got)
	}
}

func TestHierUplinkQueues(t *testing.T) {
	// Back-to-back cross-rack sends from one rack serialize on the
	// shared source bus AND on the rack's uplink, arriving 1 ms apart
	// (the bus, the slower link, paces them).
	eng, h := newTestHier(1)
	var times []sim.Time
	attachN(h, 4, nil) // rack 0
	attachN(h, 4, func(int, interface{}, sim.Time) { times = append(times, eng.Now()) })
	h.Send(0, 4, 1000, nil)
	h.Send(1, 5, 1000, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("deliveries: %d, want 2", len(times))
	}
	if d := times[1].Sub(times[0]); d != 1000*sim.Microsecond {
		t.Fatalf("cross-rack back-to-back spacing %v, want 1ms", d)
	}
}

func TestHierLossDrops(t *testing.T) {
	eng, h := newTestHier(7)
	h.cfg.Bus.LossProb = 0.5
	delivered := 0
	attachN(h, 8, func(int, interface{}, sim.Time) { delivered++ })
	for i := 0; i < 200; i++ {
		h.Send(0, 5, 100, nil)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Dropped == 0 || delivered == 0 {
		t.Fatalf("dropped=%d delivered=%d; want both nonzero at LossProb=0.5", st.Dropped, delivered)
	}
	if st.Dropped+int64(delivered) != 200 {
		t.Fatalf("dropped %d + delivered %d != 200 offered", st.Dropped, delivered)
	}
}

func TestHierBadNodesPanic(t *testing.T) {
	_, h := newTestHier(1)
	src := h.Attach("src", nil)
	for _, f := range []func(){
		func() { h.Send(src, 9, 10, nil) },
		func() { h.Multicast(9, []int{src, src}, 10, nil, nil) },
		func() { h.Multicast(src, []int{src, 9}, 10, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad node did not panic")
				}
			}()
			f()
		}()
	}
}

func TestHierBeatsFlatBusForRackLocalLoad(t *testing.T) {
	// The scaling rationale: 32 nodes exchanging rack-local traffic
	// finish far sooner on 8 racks of 4 than on one shared bus carrying
	// all of it.
	run := func(f Fabric) sim.Duration {
		eng := f.Engine()
		const n = 32
		for i := 0; i < n; i++ {
			f.Attach("n", func(int, interface{}, sim.Time) {})
		}
		for round := 0; round < 10; round++ {
			for i := 0; i < n; i++ {
				peer := (i/4)*4 + (i+1)%4 // same-rack neighbor
				f.Send(i, peer, 1000, nil)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now().Sub(0)
	}
	busEng := sim.NewEngine(1)
	busCfg := Config{BandwidthBps: 8e6, PropDelay: 0, FrameOverhead: 0}
	flat := run(New(busEng, busCfg))
	hierEng, h := newTestHier(1)
	_ = hierEng
	hier := run(h)
	if hier*4 > flat {
		t.Fatalf("hier (%v) not at least 4x faster than flat bus (%v) for rack-local load", hier, flat)
	}
}

func TestLoaderOnHier(t *testing.T) {
	eng := sim.NewEngine(2)
	h := NewHier(eng, DefaultHierConfig())
	l := StartLoader(h, 8e6, 1024)
	if err := eng.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	l.Stop()
	if l.Sent() == 0 || h.Stats().Delivered == 0 {
		t.Fatalf("loader sent %d, delivered %d; want both nonzero", l.Sent(), h.Stats().Delivered)
	}
}
