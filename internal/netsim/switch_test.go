package netsim

import (
	"testing"

	"nscc/internal/sim"
)

func newTestSwitch(seed int64) (*sim.Engine, *Switch) {
	eng := sim.NewEngine(seed)
	cfg := SwitchConfig{LinkBandwidthBps: 8e6, Latency: 100 * sim.Microsecond, FrameOverhead: 0}
	return eng, NewSwitch(eng, cfg)
}

func TestSwitchSingleTransfer(t *testing.T) {
	eng, sw := newTestSwitch(1)
	var at sim.Time
	dst := sw.Attach("dst", func(int, interface{}, sim.Time) { at = eng.Now() })
	src := sw.Attach("src", nil)
	sw.Send(src, dst, 1000, "x") // 8000 bits / 8 Mbps = 1 ms + 100 us
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(1100 * sim.Microsecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSwitchParallelPairs(t *testing.T) {
	// Disjoint pairs must not serialize: both transfers complete at the
	// single-transfer time — the crossbar property the shared bus lacks.
	eng, sw := newTestSwitch(1)
	var times []sim.Time
	h := func(int, interface{}, sim.Time) { times = append(times, eng.Now()) }
	d1 := sw.Attach("d1", h)
	d2 := sw.Attach("d2", h)
	s1 := sw.Attach("s1", nil)
	s2 := sw.Attach("s2", nil)
	sw.Send(s1, d1, 1000, nil)
	sw.Send(s2, d2, 1000, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(1100 * sim.Microsecond)
	if len(times) != 2 || times[0] != want || times[1] != want {
		t.Fatalf("parallel transfers delivered at %v, want both at %v", times, want)
	}
}

func TestSwitchEgressSerializes(t *testing.T) {
	// Two transfers from ONE source share its egress link.
	eng, sw := newTestSwitch(1)
	var times []sim.Time
	h := func(int, interface{}, sim.Time) { times = append(times, eng.Now()) }
	sw.Attach("d1", h)
	sw.Attach("d2", h)
	src := sw.Attach("src", nil)
	sw.Send(src, 0, 1000, nil)
	sw.Send(src, 1, 1000, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if times[1].Sub(times[0]) != sim.Duration(1000*sim.Microsecond) {
		t.Fatalf("egress did not serialize: %v", times)
	}
}

func TestSwitchMulticastIsUnicasts(t *testing.T) {
	// No broadcast medium: a 3-destination multicast costs three egress
	// transmissions and three frames.
	eng, sw := newTestSwitch(1)
	var times []sim.Time
	h := func(int, interface{}, sim.Time) { times = append(times, eng.Now()) }
	for i := 0; i < 3; i++ {
		sw.Attach("d", h)
	}
	src := sw.Attach("src", nil)
	wireAt := sim.Time(-1)
	sw.Multicast(src, []int{0, 1, 2}, 1000, nil, func() { wireAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sw.Stats().Frames != 3 || sw.Stats().Delivered != 3 {
		t.Fatalf("frames=%d delivered=%d, want 3/3", sw.Stats().Frames, sw.Stats().Delivered)
	}
	for i, at := range times {
		want := sim.Time(1000 * sim.Microsecond).Add(sim.Duration(i)*1000*sim.Microsecond + 100*sim.Microsecond)
		if at != want {
			t.Fatalf("copy %d delivered at %v, want %v", i, at, want)
		}
	}
	if wireAt != sim.Time(3000*sim.Microsecond) {
		t.Fatalf("onWire at %v, want when the egress drained (3ms)", wireAt)
	}
}

func TestSwitchBadNodesPanic(t *testing.T) {
	_, sw := newTestSwitch(1)
	src := sw.Attach("src", nil)
	for _, f := range []func(){
		func() { sw.Send(src, 9, 10, nil) },
		func() { sw.Multicast(9, []int{src}, 10, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad node did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSwitchMuchFasterThanBusForAllToAll(t *testing.T) {
	// The structural claim behind the paper's §4.1 remark: an
	// all-to-all exchange that saturates the 10 Mbps bus is trivial for
	// the switch.
	allToAll := func(f Fabric) sim.Duration {
		eng := f.Engine()
		const n = 8
		for i := 0; i < n; i++ {
			f.Attach("n", func(int, interface{}, sim.Time) {})
		}
		for round := 0; round < 20; round++ {
			for i := 0; i < n; i++ {
				dsts := []int{}
				for j := 0; j < n; j++ {
					if j != i {
						dsts = append(dsts, j)
					}
				}
				f.Multicast(i, dsts, 1000, nil, nil)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now().Sub(0)
	}
	busEng := sim.NewEngine(1)
	bus := New(busEng, DefaultConfig())
	swEng := sim.NewEngine(1)
	sw := NewSwitch(swEng, DefaultSwitchConfig())
	busTime := allToAll(bus)
	swTime := allToAll(sw)
	if swTime*10 > busTime {
		t.Fatalf("switch (%v) not at least 10x faster than bus (%v) for all-to-all", swTime, busTime)
	}
}

func TestLoaderOnSwitch(t *testing.T) {
	eng := sim.NewEngine(2)
	sw := NewSwitch(eng, DefaultSwitchConfig())
	l := StartLoader(sw, 8e6, 1024)
	if err := eng.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	l.Stop()
	// 8 Mbps / 8192 bits ~ 977 msgs/s.
	if l.Sent() < 800 || l.Sent() > 1200 {
		t.Fatalf("loader sent %d messages on the switch, want ~977", l.Sent())
	}
	if sw.Stats().Delivered == 0 {
		t.Fatal("no deliveries")
	}
}
