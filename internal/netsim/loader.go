package netsim

import "nscc/internal/sim"

// Loader reproduces the paper's network-loader program (§4.3, §5.2): a
// pair of extra nodes that exchange traffic at a configured offered rate
// to congest the shared medium while the benchmarks run.
type Loader struct {
	net     Fabric
	src     int
	sink    int
	rateBps float64
	msgSize int
	sent    int64
	stop    bool
}

// StartLoader attaches a source and a sink node to the network and
// begins injecting msgSize-byte messages at rateBps (payload bits per
// second) with ±10 % jitter. A rate of 0 attaches the nodes but injects
// nothing. Stop the loader with Stop.
func StartLoader(net Fabric, rateBps float64, msgSize int) *Loader {
	if msgSize <= 0 {
		msgSize = 1024
	}
	l := &Loader{net: net, rateBps: rateBps, msgSize: msgSize}
	l.sink = net.Attach("loader-sink", func(int, interface{}, sim.Time) {})
	l.src = net.Attach("loader-src", nil)
	if rateBps > 0 {
		net.Engine().Spawn("loader", l.run)
	}
	return l
}

func (l *Loader) run(p *sim.Proc) {
	interval := sim.DurationOf(float64(l.msgSize) * 8 / l.rateBps)
	for !l.stop {
		l.net.Send(l.src, l.sink, l.msgSize, nil)
		l.sent++
		jitter := 0.9 + 0.2*p.Rng().Float64()
		p.Sleep(sim.DurationOf(interval.Seconds() * jitter))
	}
}

// Stop ends traffic injection after the message currently scheduled.
func (l *Loader) Stop() { l.stop = true }

// Sent reports the number of messages injected so far.
func (l *Loader) Sent() int64 { return l.sent }

// Rate returns the configured offered rate in bits per second.
func (l *Loader) Rate() float64 { return l.rateBps }
