// Package netsim models the interconnect of the paper's evaluation
// platform: a 10 Mbps shared Ethernet joining the nodes of an IBM SP2
// multicomputer. The medium is a single shared bus — one frame in flight
// at a time, FIFO queuing, optional contention backoff — so queuing
// delay grows sharply as offered load approaches capacity. That is the
// regime in which uncontrolled asynchronous algorithms flood the network
// and in which the Global_Read primitive's receiver-side throttling pays
// off, so the bus model is the load-bearing substrate of every
// experiment in the repository.
package netsim

import (
	"fmt"
	"math/rand"

	"nscc/internal/metrics"
	"nscc/internal/sim"
	"nscc/internal/trace"
	"nscc/internal/tseries"
)

// Config describes the physical and protocol parameters of the network.
type Config struct {
	// BandwidthBps is the raw medium bit rate (10e6 for the paper's
	// Ethernet).
	BandwidthBps float64
	// PropDelay is the signal propagation delay per frame.
	PropDelay sim.Duration
	// FrameOverhead is the per-message protocol header, in bytes
	// (Ethernet + IP + UDP + PVM framing).
	FrameOverhead int
	// ContentionBackoff enables a CSMA/CD-flavoured penalty: a frame
	// that finds the bus busy waits an extra exponentially-distributed
	// backoff with mean proportional to the queue it found. Zero
	// disables the penalty (pure FIFO bus).
	ContentionBackoff float64
	// LossProb drops each frame independently with this probability.
	// Data-race-tolerant applications survive losses; loss injection
	// exercises that claim.
	LossProb float64
}

// DefaultConfig returns the paper-calibrated network: 10 Mbps shared
// Ethernet, 50 us propagation, ~100 bytes of framing, mild contention.
func DefaultConfig() Config {
	return Config{
		BandwidthBps:      10e6,
		PropDelay:         50 * sim.Microsecond,
		FrameOverhead:     300, // Ethernet+IP+UDP plus PVM daemon framing/fragmentation
		ContentionBackoff: 0.5,
	}
}

// Handler receives a delivered payload. src is the sending node's id,
// sentAt the virtual time the frame entered the network (used for warp
// measurement).
type Handler func(src int, payload interface{}, sentAt sim.Time)

// Stats aggregates network-level counters.
type Stats struct {
	Frames      int64        // frames offered to the network
	Delivered   int64        // frames delivered
	Dropped     int64        // frames lost (LossProb)
	Bytes       int64        // payload+header bytes transmitted
	BusyTime    sim.Duration // total time the bus spent transmitting
	QueueDelay  sim.Duration // sum of per-frame waits for the bus
	MaxQueueLen int          // peak number of frames waiting
}

// Telemetry converts the counters into the machine-readable export
// block. elapsed is the run's virtual duration, used for utilization.
func (s Stats) Telemetry(elapsed sim.Duration) metrics.NetTelemetry {
	util := 0.0
	if elapsed > 0 {
		util = s.BusyTime.Seconds() / elapsed.Seconds()
	}
	return metrics.NetTelemetry{
		Frames: s.Frames, Delivered: s.Delivered, Dropped: s.Dropped,
		Bytes: s.Bytes, BusySecs: s.BusyTime.Seconds(),
		QueueDelaySecs: s.QueueDelay.Seconds(), MaxQueueLen: s.MaxQueueLen,
		Utilization: util,
	}
}

// NodeStats counts one node's offered traffic (who floods the medium).
type NodeStats struct {
	Frames int64
	Bytes  int64
}

// Network is a shared-bus interconnect attached to a simulation engine.
type Network struct {
	eng      *sim.Engine
	cfg      Config
	rng      *rand.Rand
	handlers []Handler
	names    []string

	busFreeAt sim.Time
	queued    int
	stats     Stats
	perNode   []NodeStats

	// Windowed utilization accounting, maintained only while the
	// engine's tracer is set: busy time is attributed to the window
	// containing each frame's transmission start, and a "util_pct"
	// counter record is emitted when a window closes.
	winStart sim.Time
	winBusy  sim.Duration

	// Windowed series resolved by SetSeries (nil when off).
	serBusy  *tseries.Series
	serDrops *tseries.Series
	serQueue *tseries.Series

	// frames is the free list of pooled delivery callbacks. Every
	// transmission schedules exactly one delivery, so in steady state
	// the pool holds about as many frames as the peak number in flight
	// and the per-send path allocates nothing.
	frames []*frame

	// bcastBuf is Broadcast's reusable destination list. Multicast
	// copies the slice into the frame before returning, so the buffer
	// is free for the next call; a simulation step is single-threaded,
	// so no two broadcasts overlap.
	bcastBuf []int
}

// frame is a pooled in-flight transmission: the delivery callback the
// bus schedules for a frame's arrival. Pooling it (together with the
// engine's ScheduleRunner) removes the per-send closure allocation from
// the network hot path. A multicast frame copies its destination list
// into the frame's own reusable buffer, so callers may recycle theirs
// as soon as Multicast returns.
type frame struct {
	n       *Network
	src     int
	dst     int // unicast destination; -1 for multicast
	size    int
	payload interface{}
	sentAt  sim.Time
	lost    bool   // unicast loss verdict
	dsts    []int  // multicast destinations (reusable buffer)
	losts   []bool // per-destination loss verdicts; empty = none lost
}

// getFrame takes a frame from the pool (or allocates one) and stamps
// the fields common to both transmission paths.
func (n *Network) getFrame(src, size int, payload interface{}) *frame {
	var f *frame
	if ln := len(n.frames); ln > 0 {
		f = n.frames[ln-1]
		n.frames[ln-1] = nil
		n.frames = n.frames[:ln-1]
	} else {
		f = &frame{n: n}
	}
	f.src, f.size, f.payload, f.sentAt = src, size, payload, n.eng.Now()
	return f
}

// Run delivers the frame: it is the event callback for the frame's
// arrival time. After the handlers return, the frame drops its payload
// reference and goes back to the pool.
func (f *frame) Run() {
	n := f.n
	n.queued--
	if f.dst >= 0 {
		if f.lost {
			n.stats.Dropped++
			n.serDrops.Add(n.eng.Now(), 1)
			n.traceDrop(f.src, f.dst, f.size)
		} else {
			n.stats.Delivered++
			n.handlers[f.dst](f.src, f.payload, f.sentAt)
		}
	} else {
		for i, dst := range f.dsts {
			if len(f.losts) > 0 && f.losts[i] {
				n.stats.Dropped++
				n.serDrops.Add(n.eng.Now(), 1)
				n.traceDrop(f.src, dst, f.size)
				continue
			}
			n.stats.Delivered++
			n.handlers[dst](f.src, f.payload, f.sentAt)
		}
	}
	f.payload = nil
	n.frames = append(n.frames, f)
}

// SetSeries wires the bus's windowed simulated-time series into set:
// counter "net.busy_us" (microseconds of medium occupancy, attributed
// to the window each frame's transmission started in), counter
// "net.drops" (lost deliveries per window), and gauge
// "net.queue_depth" (frames waiting or in flight, sampled per frame).
// Strictly observational; a nil set is a no-op.
func (n *Network) SetSeries(set *tseries.Set) {
	n.serBusy = set.Counter("net.busy_us")
	n.serDrops = set.Counter("net.drops")
	n.serQueue = set.Gauge("net.queue_depth")
}

// utilWindow is the width of the traced utilization windows (matching
// the warp series' 100 ms windows so the two series line up).
const utilWindow = 100 * sim.Millisecond

// traceFrame emits the bus's per-frame observability records: the
// queue-depth counter, the closing of any elapsed utilization windows,
// and the frame's own busy time. Called only with a non-nil tracer.
func (n *Network) traceFrame(tr trace.Tracer, now, start sim.Time, tx sim.Duration) {
	for now >= n.winStart.Add(utilWindow) {
		pct := int64(100 * n.winBusy.Seconds() / utilWindow.Seconds())
		tr.Emit(trace.Event{TS: int64(n.winStart.Add(utilWindow)), Ph: trace.PhaseCounter,
			Pid: trace.PidNet, Cat: "net", Name: "bus_util", K1: "util_pct", V1: pct})
		n.winStart = n.winStart.Add(utilWindow)
		n.winBusy = 0
	}
	n.winBusy += tx
	tr.Emit(trace.Event{TS: int64(now), Ph: trace.PhaseCounter,
		Pid: trace.PidNet, Cat: "net", Name: "bus", K1: "queued", V1: int64(n.queued),
		K2: "wait_us", V2: int64(start.Sub(now)) / 1000})
}

// New creates a network on eng with the given configuration.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.BandwidthBps <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	return &Network{eng: eng, cfg: cfg, rng: eng.NewRng(1 << 20)}
}

// Engine returns the engine the network is attached to.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Attach registers a node with the network and returns its id. The
// handler is invoked (as an engine event) for every frame delivered to
// the node.
func (n *Network) Attach(name string, h Handler) int {
	n.handlers = append(n.handlers, h)
	n.names = append(n.names, name)
	n.perNode = append(n.perNode, NodeStats{})
	return len(n.handlers) - 1
}

// Nodes reports the number of attached nodes.
func (n *Network) Nodes() int { return len(n.handlers) }

// NodeName returns the name a node registered with.
func (n *Network) NodeName(id int) string { return n.names[id] }

// txTime returns the medium occupancy for size payload bytes.
func (n *Network) txTime(size int) sim.Duration {
	bits := float64(size+n.cfg.FrameOverhead) * 8
	return sim.DurationOf(bits / n.cfg.BandwidthBps)
}

// Send transmits payload from src to dst. It never blocks the caller:
// the frame queues for the shared bus, occupies it for its transmission
// time, and is delivered PropDelay later via the destination's handler.
// Frames from one source to one destination are delivered in FIFO order
// (the single bus serializes everything).
func (n *Network) Send(src, dst, size int, payload interface{}) {
	n.Unicast(src, dst, size, payload, nil)
}

// SendFull is Send with an onWire callback fired when the frame finishes
// transmission (leaves the sender's NIC). Senders that bound their
// in-flight frames use it to implement outbox windows.
func (n *Network) SendFull(src, dst, size int, payload interface{}, onWire func()) {
	n.Unicast(src, dst, size, payload, onWire)
}

// admitFrame performs the shared-bus admission bookkeeping for one
// frame — queuing behind the busy bus (with the CSMA/CD-style backoff
// penalty), stats, tracing, and the onWire schedule — and returns the
// frame's delivery time. The backoff penalty grows with the contention
// the frame found but saturates at ContentionBackoff transmission
// times: Ethernet's effective throughput degrades to roughly
// 1/(1+ContentionBackoff) of nominal under sustained load rather than
// collapsing.
func (n *Network) admitFrame(src, size int, onWire func()) sim.Time {
	now := n.eng.Now()
	n.stats.Frames++
	n.perNode[src].Frames++
	n.perNode[src].Bytes += int64(size + n.cfg.FrameOverhead)

	start := now
	if n.busFreeAt > start {
		start = n.busFreeAt
		if n.cfg.ContentionBackoff > 0 && n.queued > 0 {
			f := float64(n.queued) / 16
			if f > 1 {
				f = 1
			}
			mean := n.cfg.ContentionBackoff * f * n.txTime(size).Seconds()
			start = start.Add(sim.DurationOf(n.rng.ExpFloat64() * mean))
		}
	}
	tx := n.txTime(size)
	n.stats.QueueDelay += start.Sub(now)
	n.stats.BusyTime += tx
	n.stats.Bytes += int64(size + n.cfg.FrameOverhead)
	n.busFreeAt = start.Add(tx)

	n.queued++
	if n.queued > n.stats.MaxQueueLen {
		n.stats.MaxQueueLen = n.queued
	}
	n.serBusy.Add(start, float64(tx)/1e3)
	n.serQueue.Add(now, float64(n.queued))
	if tr := n.eng.Tracer(); tr != nil {
		n.traceFrame(tr, now, start, tx)
	}
	if onWire != nil {
		n.eng.Schedule(n.busFreeAt, onWire)
	}
	return n.busFreeAt.Add(n.cfg.PropDelay)
}

// traceDrop emits the loss record for a dropped delivery.
func (n *Network) traceDrop(src, dst, size int) {
	if tr := n.eng.Tracer(); tr != nil {
		tr.Emit(trace.Event{TS: int64(n.eng.Now()), Ph: trace.PhaseInstant,
			Pid: trace.PidNet, Tid: dst, Cat: "net", Name: "drop",
			K1: "src", V1: int64(src), K2: "size", V2: int64(size)})
	}
}

// Unicast is the single-destination transmission path. It is what Send
// and the message layer's point-to-point traffic use: semantically a
// one-element Multicast, but without the destination-slice and
// loss-slice allocations of the general path — point-to-point sends
// dominate the pipelined inference workloads, so this is a DES hot
// path.
func (n *Network) Unicast(src, dst, size int, payload interface{}, onWire func()) {
	if dst < 0 || dst >= len(n.handlers) {
		panic(fmt.Sprintf("netsim: send to unknown node %d", dst))
	}
	f := n.getFrame(src, size, payload)
	f.dst = dst
	deliverAt := n.admitFrame(src, size, onWire)
	f.lost = n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb
	n.eng.ScheduleRunner(deliverAt, f)
}

// Multicast transmits one frame that every node in dsts receives — the
// shared-medium property of Ethernet that PVM's pvm_mcast exploits: a
// broadcast datagram occupies the bus once regardless of the receiver
// count. The island GA's best-N/2 broadcast (§4.2.1) depends on this
// for its scaling. Loss (if configured) is drawn independently per
// receiver.
func (n *Network) Multicast(src int, dsts []int, size int, payload interface{}, onWire func()) {
	if len(dsts) == 1 {
		n.Unicast(src, dsts[0], size, payload, onWire)
		return
	}
	for _, dst := range dsts {
		if dst < 0 || dst >= len(n.handlers) {
			panic(fmt.Sprintf("netsim: send to unknown node %d", dst))
		}
	}
	f := n.getFrame(src, size, payload)
	f.dst = -1
	f.dsts = append(f.dsts[:0], dsts...)
	deliverAt := n.admitFrame(src, size, onWire)
	f.losts = f.losts[:0]
	if n.cfg.LossProb > 0 {
		for range dsts {
			f.losts = append(f.losts, n.rng.Float64() < n.cfg.LossProb)
		}
	}
	n.eng.ScheduleRunner(deliverAt, f)
}

// Broadcast multicasts payload from src to every other attached node as
// a single frame on the shared medium.
func (n *Network) Broadcast(src, size int, payload interface{}) {
	dsts := n.bcastBuf[:0]
	for dst := range n.handlers {
		if dst != src {
			dsts = append(dsts, dst)
		}
	}
	n.bcastBuf = dsts
	n.Multicast(src, dsts, size, payload, nil)
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// NodeTraffic returns the traffic node id has offered to the medium.
func (n *Network) NodeTraffic(id int) NodeStats { return n.perNode[id] }

// Utilization reports the fraction of elapsed virtual time the bus spent
// transmitting. Meaningful once the clock has advanced.
func (n *Network) Utilization() float64 {
	if n.eng.Now() == 0 {
		return 0
	}
	return n.stats.BusyTime.Seconds() / n.eng.Now().Seconds()
}
