package nscc

import "nscc/internal/pvm"

// defaultPVMWithWindow returns the default messaging overheads with a
// finite send window (transport backpressure).
func defaultPVMWithWindow(w int) pvm.Config {
	cfg := pvm.DefaultConfig()
	cfg.SendWindow = w
	return cfg
}
